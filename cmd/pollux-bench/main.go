// Command pollux-bench is the sweep orchestrator for the Pollux paper's
// evaluation exhibits (see EXPERIMENTS.md for paper-vs-measured results):
// it runs a set of exhibits at a scale preset, prints their tables, and
// feeds the structured results pipeline (internal/results) — JSON
// emission, markdown rendering, and the baseline regression gate.
//
// Usage:
//
//	pollux-bench [-scale quick|full|mega] [-exhibits all|table2,fig7,...]
//	             [-json out.json] [-md out.md]
//	             [-baseline bench/baselines/quick.json] [-update-baseline]
//	             [-parallel n] [-refitworkers n] [-quiet]
//	             [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	             [-gobench bench-output.txt]
//
// With -gobench the report is parsed from `go test -bench` output instead
// of running a sweep, so Go benchmark regressions gate through the same
// baseline pipeline: deterministic custom metrics (cells/round, fixed-seed
// JCTs) compare exactly while wall-clock measurements are Volatile —
// archived, never compared. CI pins -benchtime to a fixed iteration count
// so per-iteration custom metrics are reproducible.
//
// Quick scale finishes in a couple of minutes; full scale approximates
// the paper's 160-job / 64-GPU / 8-seed setup. Seeds are simulated
// concurrently (up to -parallel at a time, default GOMAXPROCS) and the
// Pollux GA evaluates fitness on a worker pool; results are bit-identical
// at any parallelism, which is why the quick-scale baseline under
// bench/baselines/ can act as a deterministic regression gate:
//
//	pollux-bench -baseline bench/baselines/quick.json
//
// exits non-zero with a per-metric diff report when any exhibit metric
// moves outside its recorded tolerance band (exact for closed-form
// exhibits, small relative bands for simulation-backed ones). After an
// intentional change, refresh with -update-baseline; a run filtered by
// -exhibits merges into the existing baseline instead of truncating it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/results"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pollux-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var sweep cliutil.Sweep
	sweep.Register(fs, "quick", true)
	var prof cliutil.Profile
	prof.Register(fs)
	exhibits := fs.String("exhibits", "all", "comma-separated exhibit ids, or 'all'")
	gobench := fs.String("gobench", "",
		"gate `go test -bench` output ('-' for stdin) instead of running a sweep; pair with -baseline bench/baselines/gobench.json")
	exp := fs.String("exp", "", "deprecated alias for -exhibits")
	jsonOut := fs.String("json", "", "write the sweep report as JSON ('-' for stdout)")
	mdOut := fs.String("md", "", "write a per-exhibit headline-metric markdown table ('-' for stdout)")
	baselinePath := fs.String("baseline", "", "baseline JSON to gate against; exits 1 on out-of-tolerance metrics")
	update := fs.Bool("update-baseline", false, "rewrite -baseline from this run instead of comparing")
	quiet := fs.Bool("quiet", false, "suppress the per-exhibit text tables")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *update && *baselinePath == "" {
		fmt.Fprintln(stderr, "pollux-bench: -update-baseline requires -baseline <path>")
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(stderr, "pollux-bench:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "pollux-bench:", err)
		}
	}()

	var report results.Report
	subset := false
	if *gobench != "" {
		// Gate mode for Go benchmark output: the report comes from a
		// `go test -bench` run instead of an exhibit sweep, so the shared
		// -json/-baseline/-update-baseline plumbing below applies as-is.
		if *exhibits != "all" || *exp != "" {
			fmt.Fprintln(stderr, "pollux-bench: -gobench and -exhibits are mutually exclusive")
			return 2
		}
		rep, err := readGoBench(*gobench)
		if err != nil {
			fmt.Fprintln(stderr, "pollux-bench:", err)
			return 1
		}
		rep.StartedAt = time.Now().UTC().Format(time.RFC3339)
		rep.GoVersion = runtime.Version()
		rep.Git = results.GitMetadata(".")
		report = rep
	} else {
		sc, err := sweep.Scale()
		if err != nil {
			fmt.Fprintln(stderr, "pollux-bench:", err)
			return 2
		}

		filter := *exhibits
		if *exp != "" {
			if *exhibits != "all" {
				fmt.Fprintln(stderr, "pollux-bench: -exp is a deprecated alias for -exhibits; pass only one")
				return 2
			}
			filter = *exp
		}
		var ids []string
		ids, subset, err = resolveExhibits(filter)
		if err != nil {
			fmt.Fprintln(stderr, "pollux-bench:", err)
			return 2
		}

		report = results.Report{
			Scale:     sweep.ScaleName,
			StartedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			Git:       results.GitMetadata("."),
		}
		for _, id := range ids {
			start := time.Now()
			o, err := experiments.Run(id, sc)
			if err != nil {
				fmt.Fprintln(stderr, "pollux-bench:", err)
				return 1
			}
			elapsed := time.Since(start)
			rec := o.Record(sweep.ScaleName)
			rec.WallClockSec = elapsed.Seconds()
			report.Records = append(report.Records, rec)
			if !*quiet {
				fmt.Fprint(stdout, o)
				fmt.Fprintf(stdout, "(%s in %s, scale=%s)\n\n", id, elapsed.Round(time.Millisecond), sweep.ScaleName)
			}
		}
	}

	if *jsonOut != "" {
		if err := emit(*jsonOut, stdout, func(w io.Writer) error {
			return results.WriteJSON(w, report)
		}); err != nil {
			fmt.Fprintln(stderr, "pollux-bench: write -json:", err)
			return 1
		}
	}
	if *mdOut != "" {
		if err := emit(*mdOut, stdout, func(w io.Writer) error {
			_, err := io.WriteString(w, results.Markdown(report, experiments.Headlines()))
			return err
		}); err != nil {
			fmt.Fprintln(stderr, "pollux-bench: write -md:", err)
			return 1
		}
	}

	switch {
	case *update:
		canon := report.Canonical()
		if base, err := results.ReadFile(*baselinePath); err == nil {
			if base.Scale != "" && base.Scale != report.Scale {
				// Refuse to mix scales: a filtered full-scale update
				// merged into the quick baseline would corrupt it.
				fmt.Fprintf(stderr, "pollux-bench: baseline %s is scale %q but this run is scale %q\n",
					*baselinePath, base.Scale, report.Scale)
				return 1
			}
			if subset {
				// A filtered sweep refreshes only the exhibits it ran.
				// Canonicalize the kept records too, so a baseline seeded
				// out-of-band from a raw -json emission converges to the
				// bit-reproducible form instead of preserving volatile
				// fields forever.
				canon = results.Merge(base.Canonical(), canon)
			}
		} else if !os.IsNotExist(err) {
			// An existing-but-unreadable baseline must not be silently
			// truncated to this run's exhibits.
			fmt.Fprintln(stderr, "pollux-bench: read baseline for update:", err)
			return 1
		}
		if err := results.WriteFile(*baselinePath, canon); err != nil {
			fmt.Fprintln(stderr, "pollux-bench: update baseline:", err)
			return 1
		}
		// Status goes to stderr, like the gate report: stdout may be
		// carrying the -json/-md "-" stream.
		fmt.Fprintf(stderr, "baseline updated: %s (%d exhibit(s))\n", *baselinePath, len(canon.Records))
	case *baselinePath != "":
		base, err := results.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "pollux-bench: read baseline:", err)
			return 1
		}
		// The gate report goes to stderr: stdout may be carrying the
		// machine-readable -json/-md stream ("-").
		cmp := results.Compare(base, report, results.Options{Subset: subset})
		fmt.Fprint(stderr, cmp)
		if !cmp.OK() {
			fmt.Fprintf(stderr, "pollux-bench: %d metric(s) outside baseline tolerance (see report above)\n",
				len(cmp.Failures))
			return 1
		}
	}
	return 0
}

// resolveExhibits parses the -exhibits filter against the registry,
// preserving the registry's paper order; subset reports whether the run
// covers fewer exhibits than a full sweep.
func resolveExhibits(filter string) (ids []string, subset bool, err error) {
	all := experiments.All()
	if filter == "all" || filter == "" {
		return all, false, nil
	}
	known := make(map[string]bool, len(all))
	for _, id := range all {
		known[id] = true
	}
	want := make(map[string]bool)
	for _, id := range strings.Split(filter, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !known[id] {
			return nil, false, fmt.Errorf("unknown exhibit %q (have %v)", id, all)
		}
		want[id] = true
	}
	if len(want) == 0 {
		return nil, false, fmt.Errorf("empty -exhibits filter")
	}
	for _, id := range all {
		if want[id] {
			ids = append(ids, id)
		}
	}
	return ids, len(ids) < len(all), nil
}

// readGoBench parses `go test -bench` output from a file, or from stdin
// when path is "-".
func readGoBench(path string) (results.Report, error) {
	if path == "-" {
		return results.ParseGoBench(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return results.Report{}, err
	}
	defer f.Close()
	rep, err := results.ParseGoBench(f)
	if err != nil {
		return results.Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// emit writes via w to a path, or to stdout when path is "-".
func emit(path string, stdout io.Writer, write func(io.Writer) error) error {
	if path == "-" {
		return write(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
