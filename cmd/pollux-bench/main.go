// Command pollux-bench regenerates the tables and figures of the Pollux
// paper's evaluation section (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	pollux-bench [-scale quick|full] [-exp all|table2,fig7,...] [-parallel n]
//
// Quick scale finishes in a couple of minutes; full scale approximates the
// paper's 160-job / 64-GPU / 8-seed setup. Seeds are simulated
// concurrently (up to -parallel at a time, default GOMAXPROCS) and the
// Pollux GA evaluates fitness on a worker pool, so full scale completes in
// minutes on a multi-core host; results are bit-identical at any
// parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	parallel := flag.Int("parallel", 0,
		"max per-seed simulations in flight (0 keeps the scale's default, GOMAXPROCS; 1 forces serial)")
	refitWorkers := flag.Int("refitworkers", 0,
		"max agent refits in flight per report round (0 defaults to GOMAXPROCS; 1 forces serial; results are identical either way)")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	if *parallel > 0 {
		sc.Parallel = *parallel
	}
	if *refitWorkers > 0 {
		sc.RefitWorkers = *refitWorkers
	}

	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		o, err := experiments.Run(id, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(o)
		fmt.Printf("(%s in %s, scale=%s)\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
	}
}
