package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/results"
)

// baselinePath is the checked-in quick-scale baseline, relative to this
// package directory (the test working directory).
var baselinePath = filepath.Join("..", "..", "bench", "baselines", "quick.json")

// TestSmokeAgainstCheckedInBaseline runs one cheap exhibit end to end
// through the orchestrator — sweep, JSON emission, baseline gate — against
// the checked-in quick baseline, the same invocation CI's bench job uses
// (just filtered).
func TestSmokeAgainstCheckedInBaseline(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-exhibits", "fig1a,fig6", "-quiet",
		"-json", jsonOut,
		"-baseline", baselinePath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "within tolerance") {
		t.Errorf("gate report missing on stderr: %s", stderr.String())
	}
	rep, err := results.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || rep.Records[0].Exhibit != "fig1a" {
		t.Fatalf("unexpected report: %+v", rep.Records)
	}
	if m, ok := rep.Records[0].Metric("scaling2048"); !ok || m.Value <= 1 || m.Unit != "x" {
		t.Errorf("scaling2048 metric wrong: %+v (ok=%v)", m, ok)
	}
	if rep.Scale != "quick" || rep.GoVersion == "" {
		t.Errorf("report metadata missing: scale=%q go=%q", rep.Scale, rep.GoVersion)
	}
}

// TestPerturbedMetricFailsGate perturbs one baseline metric beyond its
// tolerance band and checks the gate exits non-zero with a per-metric
// diff naming it — the acceptance property of the regression gate.
func TestPerturbedMetricFailsGate(t *testing.T) {
	base, err := results.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := filepath.Join(t.TempDir(), "perturbed.json")
	found := false
	for ri := range base.Records {
		if base.Records[ri].Exhibit != "fig6" {
			continue
		}
		for mi := range base.Records[ri].Metrics {
			m := &base.Records[ri].Metrics[mi]
			if m.Name == "peakRatio" {
				m.Value *= 1.5 // far beyond any band (peakRatio is exact)
				found = true
			}
		}
	}
	if !found {
		t.Fatal("fig6/peakRatio not in baseline")
	}
	if err := results.WriteFile(perturbed, base); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exhibits", "fig6", "-quiet", "-baseline", perturbed}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("perturbed baseline passed the gate\nstdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION") || !strings.Contains(stderr.String(), "peakRatio") {
		t.Errorf("diff report missing the perturbed metric:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "outside baseline tolerance") {
		t.Errorf("stderr summary missing: %s", stderr.String())
	}
}

// TestUpdateBaselineRoundTrip writes a fresh baseline, verifies the same
// tree passes against it, that a second update is byte-identical, and
// that a filtered update merges instead of truncating.
func TestUpdateBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-exhibits", "fig1a,fig6", "-quiet", "-baseline", path, "-update-baseline"}, &out, &errb); code != 0 {
		t.Fatalf("update failed: %d %s", code, errb.String())
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-exhibits", "fig1a,fig6", "-quiet", "-baseline", path}, &out, &errb); code != 0 {
		t.Fatalf("gate failed against fresh baseline: %s\n%s", errb.String(), out.String())
	}
	if code := run([]string{"-exhibits", "fig1a,fig6", "-quiet", "-baseline", path, "-update-baseline"}, &out, &errb); code != 0 {
		t.Fatalf("second update failed: %d", code)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("baseline not byte-stable across two runs of an unchanged tree")
	}
	// A filtered update keeps the other exhibits.
	if code := run([]string{"-exhibits", "fig6", "-quiet", "-baseline", path, "-update-baseline"}, &out, &errb); code != 0 {
		t.Fatalf("merge update failed: %d", code)
	}
	rep, err := results.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Find("fig1a"); !ok {
		t.Error("filtered -update-baseline truncated other exhibits")
	}
}

// TestUpdateRefusesCorruptBaseline: an existing-but-unparseable baseline
// must fail the update, not be silently truncated to this run's exhibits.
func TestUpdateRefusesCorruptBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-exhibits", "fig6", "-quiet", "-baseline", path, "-update-baseline"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if got, _ := os.ReadFile(path); string(got) != "{not json" {
		t.Error("corrupt baseline was overwritten")
	}
	if !strings.Contains(errb.String(), "read baseline for update") {
		t.Errorf("error not reported: %s", errb.String())
	}
}

// TestUpdateRefusesScaleMismatch: a filtered full-scale update must not
// merge into (and corrupt) the quick baseline.
func TestUpdateRefusesScaleMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-exhibits", "fig6", "-quiet", "-baseline", path, "-update-baseline"}, &out, &errb); code != 0 {
		t.Fatalf("seed update failed: %d %s", code, errb.String())
	}
	if code := run([]string{"-scale", "full", "-exhibits", "fig6", "-quiet", "-baseline", path, "-update-baseline"}, &out, &errb); code != 1 {
		t.Fatalf("mixed-scale update: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "scale") {
		t.Errorf("scale mismatch not reported: %s", errb.String())
	}
	rep, err := results.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != "quick" {
		t.Errorf("baseline scale = %q, want untouched quick", rep.Scale)
	}
}

// TestBadFlagsRejected covers the orchestrator's argument validation.
func TestBadFlagsRejected(t *testing.T) {
	cases := [][]string{
		{"-exhibits", "nope"},
		{"-scale", "medium"},
		{"-update-baseline"}, // requires -baseline
		{"-exhibits", " , "},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
	// -h prints usage and exits 0, as it did under flag.ExitOnError.
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("run(-h) = %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-baseline") {
		t.Errorf("usage not printed: %s", errb.String())
	}
}

// TestGoBenchGateRoundTrip drives the -gobench mode end to end: seed a
// baseline from benchmark output, verify a rerun with only wall-clock
// drift passes the gate, and that a deterministic custom metric drifting
// fails it.
func TestGoBenchGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	benchOut := `goos: linux
BenchmarkPolluxScheduleIncremental/full-8        2  555514208 ns/op  40304640 cells/round
BenchmarkPolluxScheduleIncremental/incremental-8 2   55824410 ns/op   7714560 cells/round
PASS
`
	outPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(outPath, []byte(benchOut), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "gobench.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-gobench", outPath, "-baseline", basePath, "-update-baseline"}, &out, &errb); code != 0 {
		t.Fatalf("seed update failed: %d %s", code, errb.String())
	}

	// Same deterministic metrics, different timings: passes.
	rerun := strings.ReplaceAll(benchOut, "555514208", "999999999")
	if err := os.WriteFile(outPath, []byte(rerun), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-gobench", outPath, "-baseline", basePath}, &out, &errb); code != 0 {
		t.Fatalf("wall-clock-only drift failed the gate: %s", errb.String())
	}

	// A drifting cells/round fails.
	drift := strings.ReplaceAll(benchOut, "40304640", "50000000")
	if err := os.WriteFile(outPath, []byte(drift), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-gobench", outPath, "-baseline", basePath}, &out, &errb); code != 1 {
		t.Fatalf("cells/round drift: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "cells/round") {
		t.Errorf("diff report missing cells/round:\n%s", errb.String())
	}

	// -gobench with an exhibit filter is a usage error.
	if code := run([]string{"-gobench", outPath, "-exhibits", "fig6"}, &out, &errb); code != 2 {
		t.Errorf("gobench+exhibits: exit %d, want 2", code)
	}
}
