// Command pollux-vet is the repo's custom vet multichecker: it runs the
// internal/lint analyzers (detmap, wallclock, rngshare, zerodefault,
// floateq) that mechanically enforce the determinism, clock, and
// option-pattern invariants the exhibit baselines rest on.
//
// CI runs it as
//
//	go build -o bin/pollux-vet ./cmd/pollux-vet
//	go vet -vettool=bin/pollux-vet ./...
//
// and `pollux-vet ./...` is shorthand for the same. See
// docs/architecture.md, "Determinism invariants and lint".
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	driver.Main(lint.All())
}
