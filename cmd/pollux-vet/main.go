// Command pollux-vet is the repo's custom vet multichecker: it runs the
// internal/lint analyzers that mechanically enforce the determinism,
// clock, and option-pattern invariants the exhibit baselines rest on.
//
// Five analyzers are package-local — detmap, wallclock, rngshare,
// zerodefault, floateq — and three are interprocedural, exchanging
// serialized facts across package boundaries through the unitchecker
// protocol's .vetx files: clocktaint (transitive wall-clock/global-rand
// reach), rngescape (*rand.Rand parameters that reach another
// goroutine), and aliasret (mutex-guarded map/slice/pointer fields
// returned without a copy). The driver also reports stale //pollux:
// directives that no longer suppress anything.
//
// CI runs it as
//
//	go build -o bin/pollux-vet ./cmd/pollux-vet
//	go vet -vettool=bin/pollux-vet ./...
//
// and `pollux-vet ./...` is shorthand for the same; `pollux-vet -json
// ./...` emits one {"pkgID": {"analyzer": [{posn, message}]}} JSON
// object per compilation unit on stdout for machine consumers. See
// docs/architecture.md, "Determinism invariants and lint".
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	driver.Main(lint.All())
}
