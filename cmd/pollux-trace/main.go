// Command pollux-trace generates and inspects synthetic workload traces
// (Sec. 5.1 of the Pollux paper): the Table 1 model mix over the diurnal
// submission pattern of Fig. 6, with both tuned and user configurations
// per job.
//
// Usage:
//
//	pollux-trace [-jobs 160] [-hours 8] [-seed 1] [-v]
//	             [-o trace.json] [-load trace.json]
//
// -o writes the generated trace as JSON; -load inspects an existing
// trace file instead of generating one (pollux-sim -trace replays
// either).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 160, "number of job submissions")
	hours := flag.Float64("hours", 8, "submission window in hours")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print every job")
	out := flag.String("o", "", "write the trace as JSON to this file")
	load := flag.String("load", "", "load a JSON trace instead of generating one")
	flag.Parse()

	var tr workload.Trace
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "invalid trace:", err)
			os.Exit(1)
		}
		*hours = tr.Duration / 3600
	} else {
		rng := rand.New(rand.NewSource(*seed))
		tr = workload.Generate(rng, workload.Options{Jobs: *jobs, Hours: *hours})
		if err := tr.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "invalid trace:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *out)
	}

	fmt.Printf("trace: %d jobs over %.1f hours (seed %d)\n\n", len(tr.Jobs), *hours, *seed)

	// Model mix.
	counts := map[string]int{}
	for _, j := range tr.Jobs {
		counts[j.Model]++
	}
	var mixRows [][]string
	for _, s := range models.Zoo() {
		mixRows = append(mixRows, []string{
			s.Name, s.Category.String(),
			fmt.Sprintf("%.1f GPU-h", s.GPUTimeHours()),
			fmt.Sprint(counts[s.Name]),
			fmt.Sprintf("%.0f%%", 100*float64(counts[s.Name])/float64(len(tr.Jobs))),
			fmt.Sprintf("%.0f%%", 100*s.Frac),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"model", "category", "1-GPU time", "jobs", "share", "target"}, mixRows))
	fmt.Println()

	// Diurnal histogram (Fig. 6).
	hist := tr.HourlyCounts()
	peak := 1
	for _, c := range hist {
		if c > peak {
			peak = c
		}
	}
	var histRows [][]string
	for h, c := range hist {
		histRows = append(histRows, []string{
			fmt.Sprint(h + 1), fmt.Sprint(c),
			strings.Repeat("#", 40*c/peak),
		})
	}
	fmt.Print(metrics.Table([]string{"hour", "submissions", ""}, histRows))

	if *verbose {
		fmt.Println()
		var rows [][]string
		for _, j := range tr.Jobs {
			rows = append(rows, []string{
				fmt.Sprint(j.ID), j.Model,
				fmt.Sprintf("%.0fs", j.Submit),
				fmt.Sprintf("%dxGPU m=%d", j.TunedGPUs, j.TunedBatch),
				fmt.Sprintf("%dxGPU m=%d", j.UserGPUs, j.UserBatch),
			})
		}
		fmt.Print(metrics.Table([]string{"job", "model", "submit", "tuned config", "user config"}, rows))
	}
}
