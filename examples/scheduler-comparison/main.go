// Scheduler comparison: Pollux vs Optimus+Oracle vs Tiresias+TunedJobs.
//
// This example reproduces a small-scale version of the paper's Table 2
// comparison: a synthetic workload sampled per Sec. 5.1 is replayed
// through the trace-driven cluster simulator under each of the three
// scheduling policies, and the resulting job-completion-time statistics
// are printed side by side.
//
// Run with: go run ./examples/scheduler-comparison
//
// The default shape (40 jobs over 2 h on 8 nodes) finishes in seconds;
// pass -scale quick or -scale full to run the shared experiment presets
// instead (internal/cliutil), and -refitworkers to bound refit
// concurrency. Results are identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cliutil"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var sweep cliutil.Sweep
	sweep.Register(flag.CommandLine, "", false)
	flag.Parse()

	// The example's own shape, overridden by -scale when given.
	jobs, hours, nodes, gpus, tick := 40, 2.0, 8, 4, 2.0
	pop, gens := 30, 15
	if sweep.ScaleName != "" {
		sc, err := sweep.Scale()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		jobs, hours, nodes, gpus, tick = sc.Jobs, sc.Hours, sc.Nodes, sc.GPUsPerNode, sc.Tick
		pop, gens = sc.PolluxPop, sc.PolluxGens
	}
	const seed = 7

	rng := rand.New(rand.NewSource(seed))
	trace := workload.Generate(rng, workload.Options{
		Jobs: jobs, Hours: hours, GPUsPerNode: gpus, MaxGPUs: nodes * gpus,
	})
	fmt.Printf("workload: %d jobs over %.0fh on %d nodes x %d GPUs (ideally-tuned configs)\n\n",
		jobs, hours, nodes, gpus)

	policies := []struct {
		label string
		p     sched.Policy
	}{
		{"Pollux", sched.NewPollux(sched.PolluxOptions{Population: pop, Generations: gens}, seed)},
		{"Optimus+Oracle", sched.NewOptimus(gpus)},
		{"Tiresias+TunedJobs", sched.NewTiresias()},
	}

	var rows [][]string
	var polluxJCT float64
	for _, pol := range policies {
		cfg := sim.Config{
			Nodes: nodes, GPUsPerNode: gpus, Tick: tick,
			UseTunedConfig: true, Seed: seed,
		}
		sweep.ApplyConfig(&cfg)
		res := sim.NewCluster(trace, pol.p, cfg).Run()
		s := res.Summary
		if pol.label == "Pollux" {
			polluxJCT = s.AvgJCT
		}
		rows = append(rows, []string{
			pol.label,
			fmt.Sprintf("%d/%d", s.Completed, s.Total),
			metrics.Hours(s.AvgJCT),
			metrics.Hours(s.P99JCT),
			metrics.Hours(s.Makespan),
			fmt.Sprintf("%.0f%%", 100*s.AvgEfficiency),
			fmt.Sprintf("%.2fx", s.AvgJCT/polluxJCT),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"policy", "done", "avg JCT", "p99 JCT", "makespan", "stat.eff", "vs Pollux"},
		rows))
	fmt.Println("\npaper (testbed, Table 2): Pollux 1.2h avg vs Optimus+Oracle 1.6h vs Tiresias 2.4h")
}
