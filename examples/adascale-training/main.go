// AdaScale on real data-parallel SGD.
//
// This example runs actual SGD (goroutine replicas, ring all-reduce,
// gradient-noise-scale measurement from the real per-replica gradients)
// on a synthetic least-squares problem, and shows the two statistical
// facts Pollux is built on:
//
//  1. the gradient noise scale grows during training (Sec. 2.2), and
//  2. training at a large batch size with AdaScale needs close to the
//     1/EFFICIENCY(m) times more examples that Eqn. 7 predicts — while a
//     large batch with a naive constant learning rate does far worse.
//
// Run with: go run ./examples/adascale-training
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/train"
)

func main() {
	const (
		dim   = 16
		m0    = 16
		noise = 1.0
	)
	rng := rand.New(rand.NewSource(1))
	ds, _ := train.SynthesizeLinear(rng, 8192, dim, noise)
	target := noise*noise/2*1.2 + 0.03
	fmt.Printf("least squares: n=%d dim=%d noise=%.1f, target loss %.3f\n\n", ds.Len(), dim, noise, target)

	run := func(batch int, adaScale bool) train.Stats {
		_, stats, err := train.Run(train.LeastSquares{}, ds, make([]float64, dim), train.Config{
			Replicas: 4, Batch: batch, M0: m0, Eta0: 0.02, UseAdaScale: adaScale,
			TargetLoss: target, MaxSteps: 60000, EvalEvery: 10, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}

	base := run(m0, true)
	fmt.Printf("baseline batch %d: %d examples to target, measured phi %.0f\n",
		m0, base.ExamplesProcessed, base.Phi)

	// Noise scale growth over training.
	fmt.Println("\nphi over training (baseline run):")
	step := len(base.PhiTrace) / 6
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(base.PhiTrace); i += step {
		fmt.Printf("  eval %3d: loss %.3f  phi %.0f\n", i, base.LossTrace[i], base.PhiTrace[i])
	}

	fmt.Println()
	var rows [][]string
	for _, batch := range []int{32, 64, 128} {
		ada := run(batch, true)
		naive := run(batch, false)
		phi := (base.Phi + ada.Phi) / 2
		pred := 1 / core.Efficiency(phi, m0, batch)
		actual := float64(ada.ExamplesProcessed) / float64(base.ExamplesProcessed)
		naiveRatio := float64(naive.ExamplesProcessed) / float64(base.ExamplesProcessed)
		naiveCell := fmt.Sprintf("%.2fx", naiveRatio)
		if !naive.ReachedTarget {
			naiveCell = "never"
		}
		rows = append(rows, []string{
			fmt.Sprint(batch),
			fmt.Sprintf("%.2fx", actual),
			fmt.Sprintf("%.2fx", pred),
			naiveCell,
		})
	}
	fmt.Print(metrics.Table(
		[]string{"batch", "examples vs m0 (AdaScale)", "Eqn.7 prediction", "examples vs m0 (constant lr)"},
		rows))
	fmt.Println("\nAdaScale tracks the Eqn. 7 prediction; a constant learning rate wastes large batches.")
}
