// Quickstart: model the goodput of one DL training job.
//
// This example walks the core Pollux workflow at the level of a single
// job: profile (allocation, batch size, iteration time) samples, fit the
// system-throughput model θsys (Sec. 4.1), combine it with the gradient
// noise scale into a goodput function (Sec. 3), and use it to pick the
// goodput-optimal batch size and AdaScale learning rate for different
// resource allocations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/models"
)

func main() {
	// The "job": ResNet-18 on CIFAR-10 from the evaluation model zoo.
	// Its Truth field plays the role of the real cluster — the thing we
	// measure but never read directly.
	spec := models.ByName("resnet18")
	fmt.Printf("job: %s/%s  m0=%d  eta0=%g\n\n", spec.Name, spec.Dataset, spec.M0, spec.Eta0)

	// 1. Profile iteration times, as the PolluxAgent would during
	// training, with 5% measurement noise.
	ag := agent.New(spec.M0, spec.Eta0, spec.MaxBatchPerGPU, spec.MaxBatchGlobal)
	rng := rand.New(rand.NewSource(1))
	for _, pl := range []core.Placement{
		{GPUs: 1, Nodes: 1}, {GPUs: 2, Nodes: 1}, {GPUs: 4, Nodes: 1},
		{GPUs: 8, Nodes: 2}, {GPUs: 16, Nodes: 4},
	} {
		for m := spec.M0; m <= 4096; m *= 2 {
			tIter := spec.Truth.TIter(pl, float64(m))
			noisy := tIter * (1 + 0.05*(rng.Float64()*2-1))
			ag.RecordSample(pl, m, noisy)
		}
	}

	// 2. Fit θsys and report the goodput function at mid-training.
	ag.SetPhi(spec.Phi(0.5))
	model := ag.Report()
	fmt.Printf("fitted θsys: αgrad=%.3fs βgrad=%.5fs/ex αl=%.3fs αn=%.3fs γ=%.2f\n",
		model.Params.AlphaGrad, model.Params.BetaGrad,
		model.Params.AlphaSyncLocal, model.Params.AlphaSyncNode, model.Params.Gamma)
	fmt.Printf("gradient noise scale φ = %.0f\n\n", model.Phi)

	// 3. For each candidate allocation, the goodput-optimal batch size,
	// AdaScale learning rate, and speedup over a single GPU (Eqn. 15).
	var rows [][]string
	for _, pl := range []core.Placement{
		{GPUs: 1, Nodes: 1}, {GPUs: 2, Nodes: 1}, {GPUs: 4, Nodes: 1},
		{GPUs: 8, Nodes: 2}, {GPUs: 16, Nodes: 4},
	} {
		m, goodput, ok := model.OptimalBatch(pl)
		if !ok {
			continue
		}
		rows = append(rows, []string{
			pl.String(),
			fmt.Sprint(m),
			fmt.Sprintf("%.4f", model.OptimalLR(spec.Eta0, m)),
			fmt.Sprintf("%.0f ex/s", model.Throughput(pl, m)),
			fmt.Sprintf("%.2f", model.Efficiency(m)),
			fmt.Sprintf("%.0f ex/s", goodput),
			fmt.Sprintf("%.2fx", model.Speedup(pl)),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"allocation", "batch*", "lr (AdaScale)", "throughput", "efficiency", "goodput", "speedup"},
		rows))

	// 4. The same question later in training: the noise scale has grown,
	// so bigger batches are efficient and the job scales further.
	ag.SetPhi(spec.Phi(0.9))
	late := ag.Report()
	pl := core.Placement{GPUs: 16, Nodes: 4}
	mEarly, _, _ := model.OptimalBatch(pl)
	mLate, _, _ := late.OptimalBatch(pl)
	fmt.Printf("\n16-GPU optimal batch: %d at mid-training -> %d late in training (φ %.0f -> %.0f)\n",
		mEarly, mLate, model.Phi, late.Phi)
}
