// Live cluster: real agents, a real scheduler service, a real socket.
//
// Unlike the trace-driven simulator, this example runs the Sec. 4.3
// architecture as live components: an in-memory cluster state (standing in
// for Kubernetes), a PolluxSched control loop exposed over net/rpc, and
// one goroutine per training job whose PolluxAgent profiles its own
// iteration times, fits its goodput model, tunes its batch size, and
// reports over the socket. Training time is wall-clock compressed so the
// whole run takes a few seconds.
//
// Run with: go run ./examples/live-cluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sched"
)

func main() {
	// 4 nodes x 4 GPUs.
	state := cluster.NewState([]int{4, 4, 4, 4})
	svc := cluster.NewService(state)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go cluster.Serve(svc, ln)
	fmt.Printf("PolluxSched listening on %s (4 nodes x 4 GPUs)\n\n", ln.Addr())

	// Scheduler control loop: one GA pass per simulated minute, paced by
	// the same wall-clock compression as the trainers (the shared
	// eventsim kernel under a Wall clock, exactly like pollux-sched).
	stop := make(chan struct{})
	policy := sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, 1)
	go svc.RunRounds(policy, 60, &eventsim.Wall{Compression: 150}, 0, stop,
		func(now float64, n int, err error) {
			if err != nil {
				log.Println("schedule:", err)
			}
		})
	defer close(stop)

	// Three jobs of different scales, shrunk to run in seconds.
	jobs := []struct {
		name   string
		model  string
		epochs float64
	}{
		{"cifar-a", "resnet18", 40},
		{"cifar-b", "resnet18", 25},
		{"recsys", "neumf", 8},
	}

	var wg sync.WaitGroup
	results := make([]string, len(jobs))
	trainers := make([]*cluster.Trainer, len(jobs))
	for i, j := range jobs {
		spec := *models.ByName(j.model)
		spec.Epochs = j.epochs
		tr := &cluster.Trainer{
			Job: j.name, Spec: &spec,
			Compression: 150, Seed: int64(i + 1),
		}
		trainers[i] = tr
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			simSecs, err := tr.Run("tcp", ln.Addr().String(), 0)
			if err != nil {
				results[i] = fmt.Sprintf("%s: error: %v", name, err)
				return
			}
			results[i] = fmt.Sprintf("%s finished in %s simulated", name, metrics.Hours(simSecs))
		}(i, j.name)
	}

	// Progress monitor.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(400 * time.Millisecond)
	defer ticker.Stop()
	fmt.Println("progress (job: fraction done, batch size):")
monitor:
	for {
		select {
		case <-done:
			break monitor
		case <-ticker.C:
			line := "  "
			for i, j := range jobs {
				line += fmt.Sprintf("%s %3.0f%% m=%-5d  ", j.name, 100*trainers[i].Progress(), trainers[i].Batch())
			}
			usage := state.Usage()
			fmt.Printf("%s gpus/node=%v\n", line, usage)
		}
	}

	fmt.Println()
	for _, r := range results {
		fmt.Println(r)
	}
}
