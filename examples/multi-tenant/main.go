// Multi-tenant serving: admission, priority, and SLO policies ahead of
// the scheduler.
//
// Three tenants share one contended cluster. "prod" carries a tight SLO
// and no quota; "batch" submits heavily under a quota that rejects its
// overflow; "burst" spikes all of its jobs into the first hour against a
// tiny quota. The serving front end (internal/admit) runs per-tenant
// quota admission at arrival time and earliest-deadline-first priority
// at every scheduling round, ahead of the Pollux policy — the same seam
// the live-testbed replay path uses, so the admission decisions printed
// here are bit-identical to a replay of the same trace.
//
// Run with: go run ./examples/multi-tenant
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/admit"
	"repro/internal/cliutil"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var sweep cliutil.Sweep
	sweep.Register(flag.CommandLine, "", false)
	flag.Parse()

	const (
		hours = 2.0
		nodes = 8
		gpus  = 4
		seed  = 7
	)
	rng := rand.New(rand.NewSource(seed))
	trace := workload.Generate(rng, workload.Options{
		Hours: hours, GPUsPerNode: gpus, MaxGPUs: nodes * gpus,
		Tenants: []workload.TenantSpec{
			{Name: "prod", Jobs: 12, SLOHours: 2},
			{Name: "batch", Jobs: 16},
			{Name: "burst", Jobs: 6, SLOHours: 1, Cycle: []float64{1, 0}},
		},
	})
	fmt.Printf("workload: %d jobs over %.0fh on %d nodes x %d GPUs, tenants %v\n\n",
		len(trace.Jobs), hours, nodes, gpus, trace.Tenants())

	cfg := sim.Config{
		Nodes: nodes, GPUsPerNode: gpus, Tick: 2,
		UseTunedConfig: true, Seed: seed,
		FrontEnd: &admit.Options{
			Admission: admit.AdmitQuota,
			Quotas:    map[string]int{"batch": 8, "burst": 2},
			Priority:  admit.PrioritySLO,
		},
	}
	sweep.ApplyConfig(&cfg)
	policy := sched.NewPollux(sched.PolluxOptions{Population: 30, Generations: 15}, seed)
	res := sim.NewCluster(trace, policy, cfg).Run()

	fmt.Println("rejections (quota admission, in arrival order):")
	for _, d := range res.Admissions {
		if !d.Admitted {
			fmt.Printf("  t=%5.0fs job=%d %s\n", d.Request.Time, d.Request.Job, d.Reason)
		}
	}
	fmt.Println()

	names := make([]string, 0, len(res.PerTenant))
	for name := range res.PerTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows [][]string
	for _, name := range names {
		ts := res.PerTenant[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d/%d", ts.Admitted, ts.Submitted),
			fmt.Sprintf("%d", ts.Rejected),
			fmt.Sprintf("%d/%d", ts.Summary.Completed, ts.Summary.Total),
			metrics.Hours(ts.Summary.AvgJCT),
			fmt.Sprintf("%.0f ex/s", ts.AvgGoodput),
			fmt.Sprintf("%.1f", ts.AvgQueueDepth),
			fmt.Sprintf("%d/%d", ts.SLOMet, ts.SLOJobs),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"tenant", "admitted", "rejected", "done", "avg JCT", "goodput", "queue", "SLO met"},
		rows))

	if len(res.Admissions) != len(trace.Jobs) {
		fmt.Fprintln(os.Stderr, "admission log does not cover the trace")
		os.Exit(1)
	}
	fmt.Println("\nprod is never rejected and its deadline ordering front-loads its jobs;")
	fmt.Println("batch and burst pay for their quota overflow at admission, not in the queue.")
}
