// Cloud autoscaling: goodput-based vs throughput-based (Fig. 10).
//
// A single large ImageNet-style training job runs in a simulated cloud
// where nodes can be provisioned and released over time. Pollux's
// goodput-based autoscaler holds few nodes while the gradient noise scale
// is small (large batches would waste statistical efficiency) and ramps up
// as training progresses; the Or et al. throughput-based baseline scales
// out immediately and holds the size. The run prints both time series and
// the cost comparison.
//
// Run with: go run ./examples/autoscale-imagenet
package main

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	// ImageNet scaled to 6 statistical epochs so the example finishes in
	// seconds; the phi trajectory (and hence the scaling behaviour) is
	// the same shape as the full 90-epoch run.
	spec := *models.ByName("resnet50")
	spec.Epochs = 6

	base := sim.AutoscaleConfig{
		GPUsPerNode: 4, MinNodes: 1, MaxNodes: 16,
		Tick: 2, Seed: 1, SamplePeriod: 600,
	}

	goodCfg := base
	goodCfg.AdaptBatchGoodput = true
	goodCfg.RespectExploreCap = true
	good := sim.RunAutoscale(&spec, sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75), goodCfg)

	thr := sim.RunAutoscale(&spec, sched.NewThroughputAutoscaler(1, 16, 0.9), base)

	fmt.Println("autoscaling ImageNet (resnet50, 6 statistical epochs), 4 GPUs/node, 1-16 nodes")
	fmt.Println()
	var rows [][]string
	n := max(len(good.Points), len(thr.Points))
	for i := 0; i < n; i++ {
		row := []string{"", "-", "-", "-", "-"}
		if i < len(good.Points) {
			p := good.Points[i]
			row[0] = fmt.Sprintf("%.0f", p.Time)
			row[1] = fmt.Sprint(p.Nodes)
			row[2] = fmt.Sprintf("%.2f", p.Efficiency)
		}
		if i < len(thr.Points) {
			p := thr.Points[i]
			if row[0] == "" {
				row[0] = fmt.Sprintf("%.0f", p.Time)
			}
			row[3] = fmt.Sprint(p.Nodes)
			row[4] = fmt.Sprintf("%.2f", p.Efficiency)
		}
		rows = append(rows, row)
	}
	fmt.Print(metrics.Table(
		[]string{"t (s)", "Pollux nodes", "Pollux eff", "Or et al. nodes", "Or et al. eff"},
		rows))

	fmt.Println()
	fmt.Print(metrics.Table(
		[]string{"policy", "completion", "cost (node-h)", "avg efficiency"},
		[][]string{
			{"Pollux (goodput)", metrics.Hours(good.CompletionTime),
				fmt.Sprintf("%.1f", good.CostNodeSeconds/3600), fmt.Sprintf("%.2f", avgEff(good.Points))},
			{"Or et al. (throughput)", metrics.Hours(thr.CompletionTime),
				fmt.Sprintf("%.1f", thr.CostNodeSeconds/3600), fmt.Sprintf("%.2f", avgEff(thr.Points))},
		}))
	fmt.Printf("\ncost ratio %.2f (paper: ~0.75, i.e. 25%% cheaper); time ratio %.2f (paper: ~1.06)\n",
		good.CostNodeSeconds/thr.CostNodeSeconds,
		good.CompletionTime/thr.CompletionTime)
}

func avgEff(pts []sim.AutoscalePoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		s += p.Efficiency
	}
	return s / float64(len(pts))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
