// Doc-honesty tests: the operator docs are part of the interface, so
// they are gated like code. TestDocsLinksResolve fails on a dangling
// relative link in README.md or docs/*.md, TestDocsReachableFromReadme
// fails when a docs page exists that no link chain from README.md
// reaches, and TestCLIDocsFresh fails when a binary registers a flag
// that docs/cli.md does not mention. The flag audit asks the binaries
// themselves (via -h), so flags added through the shared
// internal/cliutil helpers are covered without this test knowing how
// each main wires them.
package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRE matches the target of an inline markdown link [text](target).
var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdLinks returns the link targets in a markdown file, with any #anchor
// suffix stripped. External targets (scheme://, mailto:) and pure
// anchors are skipped.
func mdLinks(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	var out []string
	for _, m := range mdLinkRE.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		out = append(out, target)
	}
	return out
}

// docFiles returns README.md plus every markdown file under docs/,
// relative to the repo root.
func docFiles(t *testing.T) []string {
	t.Helper()
	pages, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no docs/*.md pages found; is the working directory the repo root?")
	}
	return append([]string{"README.md"}, pages...)
}

func TestDocsLinksResolve(t *testing.T) {
	for _, page := range docFiles(t) {
		for _, target := range mdLinks(t, page) {
			resolved := filepath.Clean(filepath.Join(filepath.Dir(page), target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %s, which does not resolve: %v", page, target, err)
			}
		}
	}
}

func TestDocsReachableFromReadme(t *testing.T) {
	// Breadth-first walk of the markdown link graph starting at
	// README.md; a docs page not in the visited set is orphaned.
	visited := map[string]bool{"README.md": true}
	queue := []string{"README.md"}
	for len(queue) > 0 {
		page := queue[0]
		queue = queue[1:]
		for _, target := range mdLinks(t, page) {
			if !strings.HasSuffix(target, ".md") {
				continue
			}
			resolved := filepath.Clean(filepath.Join(filepath.Dir(page), target))
			if visited[resolved] {
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				continue // dangling links are TestDocsLinksResolve's problem
			}
			visited[resolved] = true
			queue = append(queue, resolved)
		}
	}
	for _, page := range docFiles(t) {
		if !visited[page] {
			t.Errorf("%s is not reachable from README.md by following markdown links", page)
		}
	}
}

// helpFlagRE matches one registered flag in the PrintDefaults output of
// the flag package: two spaces, a dash, the name.
var helpFlagRE = regexp.MustCompile(`(?m)^  -([^ \t\n]+)`)

// registeredFlags asks a binary for its flags by running it with -h.
// The flag package prints every registered flag to stderr, including
// ones declared by shared helpers like internal/cliutil, so this is the
// ground truth the docs must match.
func registeredFlags(t *testing.T, binary string) []string {
	t.Helper()
	cmd := exec.Command("go", "run", "./cmd/"+binary, "-h")
	out, _ := cmd.CombinedOutput() // -h exits non-zero under some handlers; the listing is what matters
	if !strings.Contains(string(out), "Usage") {
		t.Fatalf("go run ./cmd/%s -h did not print a usage listing:\n%s", binary, out)
	}
	var flags []string
	for _, m := range helpFlagRE.FindAllStringSubmatch(string(out), -1) {
		flags = append(flags, m[1])
	}
	if len(flags) == 0 {
		t.Fatalf("go run ./cmd/%s -h listed no flags:\n%s", binary, out)
	}
	return flags
}

func TestCLIDocsFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every binary; skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	data, err := os.ReadFile(filepath.Join("docs", "cli.md"))
	if err != nil {
		t.Fatal(err)
	}

	// Split docs/cli.md into its per-binary "## name" sections so a flag
	// documented under one binary cannot vouch for another's.
	sections := map[string]string{}
	for _, chunk := range strings.Split(string(data), "\n## ")[1:] {
		name, body, _ := strings.Cut(chunk, "\n")
		sections[strings.TrimSpace(name)] = body
	}

	// pollux-vet is deliberately absent: it speaks the go vet
	// unitchecker protocol and registers no flags of its own.
	for _, binary := range []string{
		"pollux-sim", "pollux-bench", "pollux-sched", "pollux-agent", "pollux-trace",
	} {
		body, ok := sections[binary]
		if !ok {
			t.Errorf("docs/cli.md has no \"## %s\" section", binary)
			continue
		}
		for _, name := range registeredFlags(t, binary) {
			if !strings.Contains(body, "`-"+name+"`") {
				t.Errorf("docs/cli.md: the %s section does not mention `-%s`", binary, name)
			}
		}
	}
}
