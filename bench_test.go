// Package repro's root benchmarks regenerate every table and figure of
// the Pollux paper's evaluation (Sec. 5), one benchmark per exhibit.
//
//	go test -bench=. -benchmem
//
// Each benchmark runs its experiment at quick scale (see
// internal/experiments.QuickScale), logs the regenerated rows, and
// reports headline numbers as custom benchmark metrics. For paper-scale
// runs use `go run ./cmd/pollux-bench -scale full`. Paper-vs-measured
// results are recorded in EXPERIMENTS.md.
package repro

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runExperiment executes one experiment per benchmark iteration and logs
// the regenerated table once.
func runExperiment(b *testing.B, id string, metrics map[string]string) experiments.Outcome {
	b.Helper()
	sc := experiments.QuickScale()
	var out experiments.Outcome
	for i := 0; i < b.N; i++ {
		o, err := experiments.Run(id, sc)
		if err != nil {
			b.Fatal(err)
		}
		out = o
	}
	b.Log("\n" + out.String())
	for key, unit := range metrics {
		if v, ok := out.Values[key]; ok {
			b.ReportMetric(v, unit)
		}
	}
	return out
}

// BenchmarkFig1aThroughputVsGPUs regenerates Fig. 1a: throughput vs GPUs
// for batch sizes 512 and 2048 (ResNet-18/CIFAR-10).
func BenchmarkFig1aThroughputVsGPUs(b *testing.B) {
	runExperiment(b, "fig1a", map[string]string{
		"scaling512":  "x-scaling@512",
		"scaling2048": "x-scaling@2048",
	})
}

// BenchmarkFig1bBestBatchSize regenerates Fig. 1b: the goodput-optimal
// batch size by GPU count for the first vs second half of training.
func BenchmarkFig1bBestBatchSize(b *testing.B) {
	runExperiment(b, "fig1b", map[string]string{
		"first/16":  "batch@16gpu-early",
		"second/16": "batch@16gpu-late",
	})
}

// BenchmarkFig2aEfficiencyVsProgress regenerates Fig. 2a: statistical
// efficiency over training for small vs large batch sizes (ResNet-50).
func BenchmarkFig2aEfficiencyVsProgress(b *testing.B) {
	runExperiment(b, "fig2a", map[string]string{
		"e8000/0.0": "eff@8000-start",
		"e8000/1.0": "eff@8000-end",
	})
}

// BenchmarkFig2bEfficiencyPrediction regenerates Fig. 2b: Eqn.-7-predicted
// vs actual efficiency across batch sizes, with phi measured by the
// gradient-noise-scale estimators.
func BenchmarkFig2bEfficiencyPrediction(b *testing.B) {
	runExperiment(b, "fig2b", map[string]string{
		"maxAbsErr": "max-abs-err",
	})
}

// BenchmarkFig3ThroughputModelFit regenerates Fig. 3: the throughput model
// fit (RMSLE/L-BFGS) against ground truth vs node count and batch size.
func BenchmarkFig3ThroughputModelFit(b *testing.B) {
	runExperiment(b, "fig3", map[string]string{
		"meanRelErr": "mean-rel-err",
		"rmsle":      "rmsle",
	})
}

// BenchmarkFig6WorkloadDiurnal regenerates Fig. 6: submissions per hour of
// the synthetic workload (hour-4 peak at ~3x hour 1).
func BenchmarkFig6WorkloadDiurnal(b *testing.B) {
	runExperiment(b, "fig6", map[string]string{
		"peakRatio": "peak/hour1",
	})
}

// BenchmarkTable2SchedulerComparison regenerates Table 2: avg/p99 JCT and
// makespan for Pollux vs Optimus+Oracle vs Tiresias+TunedJobs on
// ideally-tuned jobs, plus the Sec. 5.2.1 efficiency comparison.
func BenchmarkTable2SchedulerComparison(b *testing.B) {
	runExperiment(b, "table2", map[string]string{
		"reductionVsOptimus":  "jct-reduction-vs-optimus",
		"reductionVsTiresias": "jct-reduction-vs-tiresias",
	})
}

// BenchmarkFig7RealisticJobs regenerates Fig. 7: normalized avg JCT as the
// share of user-configured jobs grows 0% -> 100%.
func BenchmarkFig7RealisticJobs(b *testing.B) {
	runExperiment(b, "fig7", map[string]string{
		// Keys must match the factory names ("Tiresias+TunedJobs", not
		// "Tiresias") or runExperiment silently reports nothing.
		"Tiresias+TunedJobs/100": "tiresias-norm@100%",
		"Optimus+Oracle/100":     "optimus-norm@100%",
	})
}

// BenchmarkFig8LoadSensitivity regenerates Fig. 8: avg JCT under 0.5x-2x
// job load for all three schedulers.
func BenchmarkFig8LoadSensitivity(b *testing.B) {
	runExperiment(b, "fig8", map[string]string{
		"Pollux/degradation":             "pollux-2x/0.5x",
		"Tiresias+TunedJobs/degradation": "tiresias-2x/0.5x",
	})
}

// BenchmarkTable3JobWeights regenerates Table 3: the λ job-weight decay
// ablation (Eqn. 16) on Pollux JCT percentiles.
func BenchmarkTable3JobWeights(b *testing.B) {
	runExperiment(b, "table3", map[string]string{
		"p50/0.5": "p50@lambda0.5",
		"avg/0.5": "avg@lambda0.5",
	})
}

// BenchmarkFig9Interference regenerates Fig. 9: avg JCT under injected
// network interference with avoidance enabled vs disabled.
func BenchmarkFig9Interference(b *testing.B) {
	runExperiment(b, "fig9", map[string]string{
		"on/0.50":  "avoid-on@50%",
		"off/0.50": "avoid-off@50%",
	})
}

// BenchmarkFig10Autoscaling regenerates Fig. 10: goodput-based vs
// throughput-based cloud autoscaling for ImageNet training.
func BenchmarkFig10Autoscaling(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"costRatio": "cost-ratio",
		"timeRatio": "time-ratio",
	})
}

// BenchmarkDiurnal64Cluster regenerates the diurnal64 extension exhibit:
// a 64-node cluster under a one-day (quick scale) diurnal-Poisson trace,
// Pollux vs Tiresias+TunedJobs.
func BenchmarkDiurnal64Cluster(b *testing.B) {
	runExperiment(b, "diurnal64", map[string]string{
		"Pollux/avgJCT":             "pollux-avgJCT-s",
		"Tiresias+TunedJobs/avgJCT": "tiresias-avgJCT-s",
	})
}

// BenchmarkFairnessMultiTenant regenerates the fairness extension
// exhibit: three tenants behind the quota+SLO serving front end
// (internal/admit) on one contended cluster, Pollux vs
// Tiresias+TunedJobs.
func BenchmarkFairnessMultiTenant(b *testing.B) {
	runExperiment(b, "fairness", map[string]string{
		"Pollux/prod/avgJCT":             "pollux-prod-avgJCT-s",
		"Tiresias+TunedJobs/prod/avgJCT": "tiresias-prod-avgJCT-s",
		"Pollux/batch/rejected":          "batch-rejected-jobs",
	})
}

// BenchmarkValidateEfficiencyOnRealSGD is an extension exhibit: the
// Eqn. 7 efficiency model checked against real data-parallel SGD runs
// (internal/train) rather than the scripted model zoo.
func BenchmarkValidateEfficiencyOnRealSGD(b *testing.B) {
	runExperiment(b, "validate", map[string]string{
		"worstOff": "worst-actual/pred",
	})
}

// BenchmarkSchedSerialVsParallel compares the serial and parallel
// scheduler paths on the standard 16-node Pollux experiment setup, the
// companion to BenchmarkEngineTickVsEvent for this layer. The ga/1 vs
// ga/max ratio is the per-simulation speedup from concurrent GA fitness
// evaluation; seeds/serial vs seeds/parallel adds the RunSeeds fan-out
// over 4 seeds (paper-style repeated traces). Outputs are bit-identical
// across all variants — the reported avgJCT-s metric makes that visible —
// so on a >= 4-core host the ratios are pure wall-clock speedup.
func BenchmarkSchedSerialVsParallel(b *testing.B) {
	gaWorkers := runtime.GOMAXPROCS(0)
	genTrace := func(rng *rand.Rand) workload.Trace {
		return workload.Generate(rng, workload.Options{
			Jobs: 40, Hours: 2, GPUsPerNode: 4, MaxGPUs: 64,
		})
	}
	mkPollux := func(workers int) func(seed int64) sched.Policy {
		return func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{
				Population: 20, Generations: 10, Workers: workers,
			}, seed)
		}
	}
	cfg := sim.Config{Nodes: 16, GPUsPerNode: 4, Tick: 1, UseTunedConfig: true}

	single := []struct {
		name    string
		workers int
	}{{"ga/1", 1}, {"ga/max", gaWorkers}}
	for _, s := range single {
		b.Run(s.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			tr := genTrace(rng)
			c := cfg
			c.Seed = 1
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = sim.NewCluster(tr, mkPollux(s.workers)(1), c).Run()
			}
			b.ReportMetric(res.Summary.AvgJCT, "avgJCT-s")
		})
	}

	multi := []struct {
		name     string
		parallel int
		workers  int
	}{{"seeds/serial", 1, 1}, {"seeds/parallel", runtime.GOMAXPROCS(0), gaWorkers}}
	for _, m := range multi {
		b.Run(m.name, func(b *testing.B) {
			c := cfg
			c.Parallel = m.parallel
			var sum metrics.Summary
			for i := 0; i < b.N; i++ {
				sum = sim.RunSeeds([]int64{1, 2, 3, 4}, genTrace, mkPollux(m.workers), c)
			}
			b.ReportMetric(sum.AvgJCT, "avgJCT-s")
		})
	}
}

// BenchmarkAgentTickRefitWorkers isolates the per-round agent-refit
// fan-out of the two-phase agentTick: the same 16-node Pollux simulation
// with the L-BFGS refits serial (workers/1) vs fanned over all cores
// (workers/max). Refits were ~44% of diurnal64 CPU, so on an N-core host
// the ratio approaches the per-simulation ceiling of Amdahl's law for
// that fraction; the reported avgJCT-s metric is identical across worker
// counts, which is the determinism guarantee (rng draws stay on the
// simulation goroutine; fits draw no randomness).
func BenchmarkAgentTickRefitWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := workload.Generate(rng, workload.Options{
		Jobs: 40, Hours: 2, GPUsPerNode: 4, MaxGPUs: 64,
	})
	cases := []struct {
		name    string
		workers int
	}{{"workers/1", 1}, {"workers/max", runtime.GOMAXPROCS(0)}}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := sim.Config{
				Nodes: 16, GPUsPerNode: 4, Tick: 1,
				UseTunedConfig: true, Seed: 1, RefitWorkers: c.workers,
			}
			var res sim.Result
			for i := 0; i < b.N; i++ {
				pol := sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, 1)
				res = sim.NewCluster(tr, pol, cfg).Run()
			}
			b.ReportMetric(res.Summary.AvgJCT, "avgJCT-s")
		})
	}
}

// BenchmarkReplayRound measures the unified testbed runtime: the
// standard 16-node trace replayed through the live control path
// (Service, agent reports, runtime.Step scheduling rounds) on virtual
// time, with the in-process transport vs a real loopback net/rpc socket.
// The us/round metric is the cost of one 60-second scheduling round of
// testbed time including all trainer polling between rounds; avgJCT-s is
// identical across transports (the replay determinism guarantee).
func BenchmarkReplayRound(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := workload.Generate(rng, workload.Options{
		Jobs: 40, Hours: 2, GPUsPerNode: 4, MaxGPUs: 64,
	})
	for _, overRPC := range []bool{false, true} {
		name := "local"
		if overRPC {
			name = "rpc"
		}
		b.Run(name, func(b *testing.B) {
			var res cluster.ReplayResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cluster.Replay(tr, sched.NewTiresias(), cluster.ReplayConfig{
					Nodes: 16, GPUsPerNode: 4, UseTunedConfig: true,
					Seed: 1, OverRPC: overRPC,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			rounds := res.Summary.Makespan / 60 // one scheduling round per 60 s
			if rounds > 0 {
				b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/rounds, "us/round")
			}
			b.ReportMetric(res.Summary.AvgJCT, "avgJCT-s")
		})
	}
}

// BenchmarkEngineTickVsEvent compares the fixed-step and discrete-event
// simulation engines on the standard 16-node trace at a 1-second tick,
// per policy. The ns/op ratio between the tick and event sub-benchmarks
// is the engine speedup.
func BenchmarkEngineTickVsEvent(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := workload.Generate(rng, workload.Options{
		Jobs: 40, Hours: 2, GPUsPerNode: 4, MaxGPUs: 64,
	})
	policies := []struct {
		name string
		make func(seed int64) sched.Policy
	}{
		{"pollux", func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, seed)
		}},
		{"optimus", func(seed int64) sched.Policy { return sched.NewOptimus(4) }},
		{"tiresias", func(seed int64) sched.Policy { return sched.NewTiresias() }},
	}
	for _, pol := range policies {
		for _, engine := range []string{sim.EngineTick, sim.EngineEvent} {
			b.Run(pol.name+"/"+engine, func(b *testing.B) {
				cfg := sim.Config{
					Nodes: 16, GPUsPerNode: 4, Tick: 1,
					UseTunedConfig: true, Seed: 1, Engine: engine,
				}
				var res sim.Result
				for i := 0; i < b.N; i++ {
					res = sim.NewCluster(tr, pol.make(1), cfg).Run()
				}
				b.ReportMetric(res.Summary.AvgJCT, "avgJCT-s")
				b.ReportMetric(res.AvgGoodput, "goodput-ex/s")
			})
		}
	}
}
